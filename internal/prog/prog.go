// Package prog implements the paper's program model (§3.1.1, Appendix A.1):
// a random prefix of m independent LD/ST instructions followed by the two
// critical instructions of the canonical atomicity violation (§2.2) — a
// critical load and a critical store to the same shared location.
//
// Locations are abstract integers. Per A.1, every prefix instruction
// accesses its own distinct location, and only the two critical
// instructions share one (location CriticalLocation); this is the paper's
// simplifying assumption that lets any two prefix instructions reorder.
package prog

import (
	"errors"
	"fmt"
	"strings"

	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

// CriticalLocation is the abstract shared location X accessed by both
// critical instructions.
const CriticalLocation = -1

// ErrBadProgram reports an invalid program construction.
var ErrBadProgram = errors.New("prog: bad program")

// Instruction is one memory operation.
type Instruction struct {
	// Type is the operation type (LD, ST, or a fence in the §7 extension).
	Type memmodel.OpType
	// Loc is the abstract memory location accessed; fences use 0.
	Loc int
	// Critical marks the two instructions of the atomicity violation.
	Critical bool
}

// String renders the instruction compactly, e.g. "ST[3]" or "LD*[X]".
func (in Instruction) String() string {
	mark := ""
	if in.Critical {
		mark = "*"
	}
	loc := fmt.Sprintf("[%d]", in.Loc)
	if in.Loc == CriticalLocation {
		loc = "[X]"
	}
	if in.Type.IsFence() {
		loc = ""
	}
	return in.Type.String() + mark + loc
}

// Program is an initial program order S0: a sequence of instructions whose
// last two entries are the critical load and critical store.
type Program struct {
	instrs []Instruction
}

// Params configures random program generation.
type Params struct {
	// PrefixLen is m, the number of random instructions before the
	// critical pair. Must be ≥ 0.
	PrefixLen int
	// StoreProb is p, the probability each prefix instruction is a ST.
	StoreProb float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.PrefixLen < 0 {
		return fmt.Errorf("%w: prefix length %d", ErrBadProgram, p.PrefixLen)
	}
	if p.StoreProb < 0 || p.StoreProb > 1 {
		return fmt.Errorf("%w: store probability %v", ErrBadProgram, p.StoreProb)
	}
	return nil
}

// DefaultParams returns the paper's normal form: p = 1/2 with the given
// prefix length.
func DefaultParams(prefixLen int) Params {
	return Params{PrefixLen: prefixLen, StoreProb: 0.5}
}

// Generate draws a random initial program order per §3.1.1: PrefixLen
// instructions that are ST with probability StoreProb (each to a distinct
// location), then the critical LD and critical ST to CriticalLocation.
func Generate(params Params, src *rng.Source) (*Program, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("%w: nil rng source", ErrBadProgram)
	}
	instrs := make([]Instruction, 0, params.PrefixLen+2)
	for i := 0; i < params.PrefixLen; i++ {
		typ := memmodel.Load
		if src.Bool(params.StoreProb) {
			typ = memmodel.Store
		}
		instrs = append(instrs, Instruction{Type: typ, Loc: i})
	}
	instrs = append(instrs,
		Instruction{Type: memmodel.Load, Loc: CriticalLocation, Critical: true},
		Instruction{Type: memmodel.Store, Loc: CriticalLocation, Critical: true},
	)
	return &Program{instrs: instrs}, nil
}

// FromTypes builds a program whose prefix has exactly the given types, then
// the critical pair. Used by exact enumeration and tests.
func FromTypes(prefix []memmodel.OpType) (*Program, error) {
	instrs := make([]Instruction, 0, len(prefix)+2)
	for i, t := range prefix {
		if !t.IsMemOp() && !t.IsFence() {
			return nil, fmt.Errorf("%w: prefix[%d] has type %v", ErrBadProgram, i, t)
		}
		instrs = append(instrs, Instruction{Type: t, Loc: i})
	}
	instrs = append(instrs,
		Instruction{Type: memmodel.Load, Loc: CriticalLocation, Critical: true},
		Instruction{Type: memmodel.Store, Loc: CriticalLocation, Critical: true},
	)
	return &Program{instrs: instrs}, nil
}

// Len returns the total instruction count m+2.
func (p *Program) Len() int { return len(p.instrs) }

// PrefixLen returns m.
func (p *Program) PrefixLen() int { return len(p.instrs) - 2 }

// At returns the instruction at 0-based position i in the initial order.
func (p *Program) At(i int) Instruction { return p.instrs[i] }

// CriticalLoadIndex returns the 0-based initial position of the critical
// load (the paper's x_{m+1}).
func (p *Program) CriticalLoadIndex() int { return len(p.instrs) - 2 }

// CriticalStoreIndex returns the 0-based initial position of the critical
// store (the paper's x_{m+2}).
func (p *Program) CriticalStoreIndex() int { return len(p.instrs) - 1 }

// Types returns the type sequence of the full program.
func (p *Program) Types() []memmodel.OpType {
	out := make([]memmodel.OpType, len(p.instrs))
	for i, in := range p.instrs {
		out[i] = in.Type
	}
	return out
}

// String renders the program in initial order, one instruction per token.
func (p *Program) String() string {
	parts := make([]string, len(p.instrs))
	for i, in := range p.instrs {
		parts[i] = in.String()
	}
	return strings.Join(parts, " ")
}

// CanonicalBug returns the §2.2 canonical atomicity violation as thread
// source text for documentation and the operational simulator: each of two
// threads loads shared x, increments a local, and stores back.
//
// It is provided here so every layer (abstract model, operational machine,
// examples) refers to a single definition of the bug.
func CanonicalBug() string {
	return strings.TrimSpace(`
Thread 1            Thread 2
1: int loc = x;     1: int loc = x;
2: loc = loc + 1;   2: loc = loc + 1;
3: x = loc;         3: x = loc;
`)
}
