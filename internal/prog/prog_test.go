package prog

import (
	"errors"
	"math"
	"strings"
	"testing"

	"memreliability/internal/memmodel"
	"memreliability/internal/rng"
)

func TestGenerateShape(t *testing.T) {
	src := rng.New(1)
	p, err := Generate(DefaultParams(10), src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 12 || p.PrefixLen() != 10 {
		t.Fatalf("Len=%d PrefixLen=%d", p.Len(), p.PrefixLen())
	}
	cl := p.At(p.CriticalLoadIndex())
	cs := p.At(p.CriticalStoreIndex())
	if cl.Type != memmodel.Load || !cl.Critical || cl.Loc != CriticalLocation {
		t.Errorf("critical load = %+v", cl)
	}
	if cs.Type != memmodel.Store || !cs.Critical || cs.Loc != CriticalLocation {
		t.Errorf("critical store = %+v", cs)
	}
	if p.CriticalLoadIndex() != 10 || p.CriticalStoreIndex() != 11 {
		t.Errorf("critical indices %d, %d", p.CriticalLoadIndex(), p.CriticalStoreIndex())
	}
}

func TestGenerateDistinctLocations(t *testing.T) {
	src := rng.New(2)
	p, err := Generate(DefaultParams(50), src)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < p.PrefixLen(); i++ {
		loc := p.At(i).Loc
		if loc == CriticalLocation {
			t.Fatalf("prefix instruction %d uses the critical location", i)
		}
		if seen[loc] {
			t.Fatalf("duplicate prefix location %d", loc)
		}
		seen[loc] = true
	}
}

func TestGenerateStoreFraction(t *testing.T) {
	src := rng.New(3)
	for _, pStore := range []float64{0.25, 0.5, 0.75} {
		stores, total := 0, 0
		for trial := 0; trial < 200; trial++ {
			p, err := Generate(Params{PrefixLen: 100, StoreProb: pStore}, src)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < p.PrefixLen(); i++ {
				total++
				if p.At(i).Type == memmodel.Store {
					stores++
				}
			}
		}
		frac := float64(stores) / float64(total)
		if math.Abs(frac-pStore) > 0.02 {
			t.Errorf("p=%v: store fraction %v", pStore, frac)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	src := rng.New(4)
	if _, err := Generate(Params{PrefixLen: -1, StoreProb: 0.5}, src); !errors.Is(err, ErrBadProgram) {
		t.Error("negative prefix accepted")
	}
	if _, err := Generate(Params{PrefixLen: 1, StoreProb: 1.5}, src); !errors.Is(err, ErrBadProgram) {
		t.Error("bad probability accepted")
	}
	if _, err := Generate(DefaultParams(1), nil); !errors.Is(err, ErrBadProgram) {
		t.Error("nil source accepted")
	}
}

func TestGenerateZeroPrefix(t *testing.T) {
	src := rng.New(5)
	p, err := Generate(DefaultParams(0), src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestFromTypes(t *testing.T) {
	p, err := FromTypes([]memmodel.OpType{memmodel.Store, memmodel.Load, memmodel.Store})
	if err != nil {
		t.Fatal(err)
	}
	types := p.Types()
	want := []memmodel.OpType{
		memmodel.Store, memmodel.Load, memmodel.Store,
		memmodel.Load, memmodel.Store,
	}
	if len(types) != len(want) {
		t.Fatalf("types len %d", len(types))
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("types[%d] = %v, want %v", i, types[i], want[i])
		}
	}
	if _, err := FromTypes([]memmodel.OpType{memmodel.OpType(42)}); !errors.Is(err, ErrBadProgram) {
		t.Error("invalid type accepted")
	}
}

func TestFromTypesWithFences(t *testing.T) {
	p, err := FromTypes([]memmodel.OpType{memmodel.Store, memmodel.FenceAcquire})
	if err != nil {
		t.Fatal(err)
	}
	if p.At(1).Type != memmodel.FenceAcquire {
		t.Errorf("fence not preserved: %v", p.At(1))
	}
}

func TestString(t *testing.T) {
	p, err := FromTypes([]memmodel.OpType{memmodel.Store})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"ST[0]", "LD*[X]", "ST*[X]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestInstructionStringFence(t *testing.T) {
	in := Instruction{Type: memmodel.FenceFull}
	if got := in.String(); got != "FENCE" {
		t.Errorf("fence String() = %q", got)
	}
}

func TestCanonicalBug(t *testing.T) {
	text := CanonicalBug()
	for _, want := range []string{"Thread 1", "Thread 2", "int loc = x", "x = loc"} {
		if !strings.Contains(text, want) {
			t.Errorf("CanonicalBug missing %q", want)
		}
	}
}
