package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind is the exposition type of a metric family.
type MetricKind string

const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Label is one constant key/value pair attached to a metric series at
// registration time. Labels are fixed at registration — there is no
// per-observation label allocation, which is what keeps the hot-path
// update calls allocation-free.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored —
// counters are monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (CAS loop; no allocation).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a +Inf overflow bucket, a total count, and a sum. Bounds
// are fixed at registration (see LogBuckets); Observe is a linear scan
// over at most a few dozen bounds plus three atomic updates — no
// allocation, no lock.
type Histogram struct {
	bounds []float64 // ascending upper bounds (exclusive of +Inf)
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one observation: v lands in the first bucket whose
// upper bound is ≥ v (Prometheus `le` semantics), or the +Inf bucket.
func (h *Histogram) Observe(v float64) {
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the histogram's upper bounds (without +Inf). The
// returned slice is shared; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(Bounds()) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if i == len(h.bounds) {
		return h.inf.Load()
	}
	return h.counts[i].Load()
}

// LogBuckets returns n exponentially spaced upper bounds starting at
// min and multiplying by factor: min, min·factor, …, min·factor^(n-1).
// It is the canonical bucket layout of the subsystem: every latency and
// size histogram uses log buckets so one layout spans the microsecond-
// to-minute (or unit-to-mega) range at fixed relative resolution.
func LogBuckets(min, factor float64, n int) []float64 {
	if !(min > 0) || !(factor > 1) || n < 1 {
		panic(fmt.Sprintf("obs: bad log buckets (min=%v factor=%v n=%d)", min, factor, n))
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared layout for duration histograms, in
// seconds: 100µs to ~105s at 2x resolution.
func LatencyBuckets() []float64 { return LogBuckets(100e-6, 2, 21) }

// TrialBuckets is the shared layout for Monte Carlo trial-count
// histograms: 1024 trials (an mc cancellation sub-batch) to ~33M at 2x
// resolution.
func TrialBuckets() []float64 { return LogBuckets(1024, 2, 16) }

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   MetricKind
	labels []Label // sorted by key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a set of named metric series. Registration (Counter,
// Gauge, Histogram) is idempotent on (name, labels): re-registering
// returns the existing handle, so package-level handles and per-server
// handles resolve exactly once and hot paths hold direct pointers. A
// name registered with conflicting kind, help, or histogram bounds
// panics — one name must mean one thing.
type Registry struct {
	mu      sync.RWMutex
	series  map[string]*metric // key: name + label signature
	ordered []*metric
	kinds   map[string]MetricKind // family name → kind
	helps   map[string]string     // family name → help
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*metric),
		kinds:  make(map[string]MetricKind),
		helps:  make(map[string]string),
	}
}

// seriesKey builds the unique key of (name, labels) with labels sorted
// by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register resolves or creates one series under the registry lock.
func (r *Registry) register(name, help string, kind MetricKind, labels []Label, make func() *metric) *metric {
	if name == "" {
		panic("obs: empty metric name")
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := seriesKey(name, sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, k))
	}
	if h, ok := r.helps[name]; ok && h != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help", name))
	}
	if m, ok := r.series[key]; ok {
		return m
	}
	m := make()
	m.name, m.help, m.kind, m.labels = name, help, kind, sorted
	r.kinds[name] = kind
	r.helps[name] = help
	r.series[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or resolves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, KindCounter, labels,
		func() *metric { return &metric{counter: &Counter{}} }).counter
}

// Gauge registers (or resolves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, KindGauge, labels,
		func() *metric { return &metric{gauge: &Gauge{}} }).gauge
}

// Histogram registers (or resolves) a histogram series over the given
// ascending upper bounds (see LogBuckets). Re-registration with
// different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bound", name))
	}
	m := r.register(name, help, KindHistogram, labels, func() *metric {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(bounds))
		return &metric{hist: h}
	})
	h := m.hist
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// labelString renders {k="v",…} including an extra le pair when
// requested (leVal == "" means no le label).
func labelString(labels []Label, leVal string) string {
	if len(labels) == 0 && leVal == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if leVal != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", leVal)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float in the Prometheus text format.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// formatBound renders a histogram upper bound as its le label value.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP
// and TYPE line each, series sorted by label signature, histograms with
// cumulative buckets, a +Inf bucket, and _sum/_count series. The output
// is deterministic for a given registry state, so it can be golden-
// filed.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	series := append([]*metric(nil), r.ordered...)
	r.mu.RUnlock()

	sort.Slice(series, func(i, j int) bool {
		if series[i].name != series[j].name {
			return series[i].name < series[j].name
		}
		return seriesKey("", series[i].labels) < seriesKey("", series[j].labels)
	})

	lastFamily := ""
	for _, m := range series {
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		switch m.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels, ""), m.counter.Value()); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels, ""), formatValue(m.gauge.Value())); err != nil {
				return err
			}
		case KindHistogram:
			h := m.hist
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(m.labels, formatBound(b)), cum); err != nil {
					return err
				}
			}
			cum += h.inf.Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(m.labels, "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelString(m.labels, ""), formatValue(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels, ""), h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
