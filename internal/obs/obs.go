// Package obs is the zero-dependency observability layer of the
// estimation stack: a typed metrics registry (atomic counters, gauges,
// fixed log-bucket histograms) with Prometheus text exposition, and a
// lightweight span-tracing API for the estimate lifecycle.
//
// Design constraints, in order:
//
//  1. Determinism. Instrumentation must never perturb results: it
//     consumes no experiment RNG, never reorders chunks, and never
//     writes into result encodings. Metrics observe; they do not steer.
//  2. Zero steady-state allocation. Metric handles are resolved once
//     (registration is idempotent, so package-level handles are cheap);
//     Counter.Add, Gauge.Set, and Histogram.Observe are lock-free
//     atomic updates with no allocation — safe to call on the Monte
//     Carlo chunk path (asserted by the perf suite's zero-alloc
//     scenarios). Spans are created only at chunk-round barriers, never
//     per trial.
//  3. Deterministic exposition and span structure. WritePrometheus
//     output is sorted (families by name, series by label signature) so
//     it can be golden-filed, and span trees are built at sequential
//     barriers so the same (query, seed) always yields the identical
//     structure.
//
// The process-global Default registry collects the engine-level metrics
// (estimator, mc, core, sweep); the HTTP service keeps its own registry
// for per-endpoint metrics and exposes both at GET /metrics/prom.
package obs

var defaultRegistry = NewRegistry()

// Default returns the process-global registry. Engine packages
// (estimator, mc, core, sweep) register their metrics here; servers
// that want isolation create their own with NewRegistry and expose both.
func Default() *Registry { return defaultRegistry }
