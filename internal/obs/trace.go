package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one node in a query-scoped trace tree. Spans record the
// estimate lifecycle (validate → registry dispatch → chunk rounds →
// merge) and are created only at sequential barriers — feed loops,
// adaptive round boundaries — never per trial or per chunk, so the
// bit-parallel hot path stays allocation-free.
//
// All methods are nil-safe: a nil *Span is the "tracing disabled" state
// and every operation on it is a no-op, so instrumented code never
// branches on whether a trace is active.
type Span struct {
	name  string
	attrs []Label
	start time.Time

	mu       sync.Mutex
	elapsed  time.Duration
	ended    bool
	children []*Span
}

// NewTrace starts a root span. The caller owns the returned span and
// must End it; pass it down via WithSpan.
func NewTrace(name string, attrs ...Label) *Span {
	return newSpan(name, attrs)
}

func newSpan(name string, attrs []Label) *Span {
	s := &Span{name: name, start: time.Now()}
	if len(attrs) > 0 {
		s.attrs = append([]Label(nil), attrs...)
	}
	return s
}

// Child starts a sub-span. Children appear in creation order, which —
// because spans are only created at sequential barriers — is
// deterministic for a given (query, seed).
func (s *Span) Child(name string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name, attrs)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.elapsed = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr appends an attribute after creation (e.g. a result computed
// mid-span, like the adaptive stop reason).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

type spanKey struct{}

// WithSpan attaches s to the context. A nil span returns ctx unchanged,
// so disabled tracing costs nothing downstream.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span attached to ctx, or nil when tracing is
// disabled.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanJSON is the exported form of a span tree. The structure — names,
// nesting, and attributes — is deterministic for a given (query, seed);
// only DurationMS varies run to run.
type SpanJSON struct {
	Name       string            `json:"name"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// Export snapshots the span tree. Un-ended spans export their elapsed
// time so far. Attributes with duplicate keys keep the last value.
func (s *Span) Export() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	d := s.elapsed
	if !s.ended {
		d = time.Since(s.start)
	}
	attrs := append([]Label(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	out := SpanJSON{Name: s.name, DurationMS: float64(d) / float64(time.Millisecond)}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// WriteJSON writes the exported span tree as indented JSON (map keys
// are emitted sorted by encoding/json, so output is deterministic up to
// durations).
func (s *Span) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// Structure renders the tree shape without durations — name, sorted
// attribute keys, and children, one node per line — for determinism
// assertions in tests: same (query, seed) must produce identical
// Structure output.
func (s *Span) Structure() string {
	var b []byte
	b = appendStructure(b, s.Export(), 0)
	return string(b)
}

func appendStructure(b []byte, sj SpanJSON, depth int) []byte {
	for i := 0; i < depth; i++ {
		b = append(b, ' ', ' ')
	}
	b = append(b, sj.Name...)
	if len(sj.Attrs) > 0 {
		keys := make([]string, 0, len(sj.Attrs))
		for k := range sj.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = append(b, '[')
		for i, k := range keys {
			if i > 0 {
				b = append(b, ' ')
			}
			b = append(b, k...)
			b = append(b, '=')
			b = append(b, sj.Attrs[k]...)
		}
		b = append(b, ']')
	}
	b = append(b, '\n')
	for _, c := range sj.Children {
		b = appendStructure(b, c, depth+1)
	}
	return b
}
