package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSpanSafe proves the "tracing disabled" contract: every method
// on a nil *Span is a no-op and WithSpan(nil) leaves ctx untouched.
func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.Child("child")
	if c != nil {
		t.Fatal("nil span produced a non-nil child")
	}
	s.End()
	s.SetAttr("k", "v")
	if got := s.Name(); got != "" {
		t.Fatalf("nil span name = %q", got)
	}
	ctx := context.Background()
	if WithSpan(ctx, nil) != ctx {
		t.Fatal("WithSpan(ctx, nil) returned a new context")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("SpanFrom(background) != nil")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	root := NewTrace("root")
	ctx := WithSpan(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("SpanFrom did not return the attached span")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	root := NewTrace("estimate", L("kind", "mc"))
	v := root.Child("validate")
	v.End()
	d := root.Child("dispatch")
	r0 := d.Child("round", L("round", "0"))
	r0.End()
	r1 := d.Child("round", L("round", "1"))
	r1.SetAttr("stop", "converged")
	r1.End()
	d.End()
	root.End()

	want := strings.Join([]string{
		"estimate[kind=mc]",
		"  validate",
		"  dispatch",
		"    round[round=0]",
		"    round[round=1 stop=converged]",
		"",
	}, "\n")
	if got := root.Structure(); got != want {
		t.Errorf("structure:\n%s\nwant:\n%s", got, want)
	}
}

// TestSpanStructureDeterministic builds the same tree twice and asserts
// identical Structure output — the foundation of the span-tree
// determinism guarantee (the cross-package same-query-same-seed test
// lives in the estimator package, next to the instrumentation).
func TestSpanStructureDeterministic(t *testing.T) {
	build := func() string {
		root := NewTrace("estimate", L("seed", "42"))
		for i := 0; i < 3; i++ {
			c := root.Child("cell", L("idx", string(rune('0'+i))))
			c.End()
		}
		root.End()
		return root.Structure()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("structures differ:\n%s\nvs\n%s", a, b)
	}
}

func TestSpanWriteJSON(t *testing.T) {
	root := NewTrace("root", L("a", "1"))
	root.Child("leaf").End()
	root.End()

	var buf bytes.Buffer
	if err := root.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got SpanJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.Name != "root" || got.Attrs["a"] != "1" {
		t.Errorf("root decoded wrong: %+v", got)
	}
	if len(got.Children) != 1 || got.Children[0].Name != "leaf" {
		t.Errorf("children decoded wrong: %+v", got.Children)
	}
	if got.DurationMS < 0 {
		t.Errorf("negative duration: %v", got.DurationMS)
	}
}
