package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge = %v, want 3.0", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to an upper bound lands in that bucket, just above it lands in
// the next, and beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 2, 4})

	cases := []struct {
		v    float64
		want int // bucket index; 3 = +Inf
	}{
		{0.5, 0}, {1, 0}, {1.0000001, 1}, {2, 1}, {3, 2}, {4, 2}, {4.5, 3}, {100, 3},
	}
	counts := make([]uint64, 4)
	sum := 0.0
	for _, c := range cases {
		h.Observe(c.v)
		counts[c.want]++
		sum += c.v
	}
	for i, want := range counts {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", got, len(cases))
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), sum)
	}
}

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for i := 1; i < len(LatencyBuckets()); i++ {
		if !(LatencyBuckets()[i] > LatencyBuckets()[i-1]) {
			t.Fatal("LatencyBuckets not strictly ascending")
		}
	}
}

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race (make test does) this
// also proves the update paths are data-race free.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "test")
	g := r.Gauge("g", "test")
	h := r.Histogram("hist", "test", []float64{1, 10, 100})

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRegistrationIdempotent pins the handle-resolution contract:
// re-registering the same (name, labels) returns the same handle, and
// series with different labels are distinct.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", "requests", L("route", "/a"))
	b := r.Counter("reqs", "requests", L("route", "/a"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	c := r.Counter("reqs", "requests", L("route", "/b"))
	if a == c {
		t.Fatal("different labels returned the same handle")
	}
	// Label order must not matter.
	d := r.Counter("multi", "m", L("x", "1"), L("y", "2"))
	e := r.Counter("multi", "m", L("y", "2"), L("x", "1"))
	if d != e {
		t.Fatal("label order produced distinct handles")
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"kind conflict", func() { r.Gauge("m", "help") }},
		{"help conflict", func() { r.Counter("m", "other help") }},
		{"bounds conflict", func() {
			r.Histogram("hh", "h", []float64{1, 2})
			r.Histogram("hh", "h", []float64{1, 3})
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestPrometheusGolden locks the exposition format against a golden
// file: family sorting, HELP/TYPE lines, label rendering, cumulative
// histogram buckets with +Inf, and _sum/_count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	// Register out of name order to prove output sorting.
	r.Gauge("zeta_depth", "Current depth.").Set(3)
	c := r.Counter("alpha_total", "Total alphas.", L("kind", "mc"))
	c.Add(7)
	r.Counter("alpha_total", "Total alphas.", L("kind", "exact")).Add(2)
	h := r.Histogram("beta_seconds", "Beta latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusDeterministic asserts two writes of the same registry
// are byte-identical.
func TestPrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(1)
	r.Histogram("b_seconds", "b", LatencyBuckets()).Observe(0.01)
	var w1, w2 bytes.Buffer
	if err := r.WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Error("two expositions of the same registry differ")
	}
}
