// Package memreliability reproduces "The Impact of Memory Models on
// Software Reliability in Multiprocessors" (Jaffe, Effinger-Dean, Ceze,
// Moscibroda, Strauss; PODC 2011): a probabilistic model of how memory
// consistency models affect the likelihood that a canonical concurrency
// bug manifests.
//
// The package is a facade over the implementation packages:
//
//   - memory models as reordering matrices (Table 1) with fence support;
//   - the settling process (§3.1.2) sampling instruction reorderings, plus
//     an exact finite-program dynamic program validating Theorem 4.1;
//   - the shift process (§5) with the exact Theorem 5.1 evaluation;
//   - the joined model (§6) estimating Pr[A], the probability the §2.2
//     atomicity violation does not manifest, by exact computation (n=2),
//     full simulation, and the Theorem 6.1 hybrid that reaches the
//     e^{-Θ(n²)} regime of Theorem 6.3;
//   - an operational multiprocessor simulator (reorder windows and store
//     buffers) with a litmus-test harness and a vector-clock race
//     detector, grounding the abstract model in executable semantics.
//
// Types are re-exported as aliases so downstream code needs only this
// package for the common workflows; the cmd/ tools and examples/ show
// complete usage.
package memreliability

import (
	"context"
	"io"

	"memreliability/internal/analytic"
	"memreliability/internal/core"
	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/serve"
	"memreliability/internal/settle"
	"memreliability/internal/sweep"
)

// Model is a memory consistency model (a Table 1 reordering matrix).
type Model = memmodel.Model

// Interval is a two-sided probability bound.
type Interval = analytic.Interval

// Config configures a joined-model experiment.
type Config = core.Config

// HybridResult is a Theorem 6.1 hybrid estimate.
type HybridResult = core.HybridResult

// ScalingRow is one row of a Theorem 6.3 thread-scaling sweep.
type ScalingRow = core.ScalingRow

// SweepSpec declaratively describes an experiment sweep: a grid of
// models × thread counts × prefix lengths × estimator kinds, plus trials,
// seed, and worker budget.
type SweepSpec = sweep.Spec

// SweepKind names an estimation route within a sweep.
type SweepKind = sweep.Kind

// Sweep estimator kinds.
const (
	SweepExact      = sweep.Exact
	SweepFullMC     = sweep.FullMC
	SweepHybrid     = sweep.Hybrid
	SweepWindowDist = sweep.WindowDist
)

// SweepArtifact is the versioned, reproducible result of a sweep run.
type SweepArtifact = sweep.Artifact

// SweepArtifactVersion is the schema version stamped on every sweep
// artifact, including those served by the /v1/sweeps API.
const SweepArtifactVersion = sweep.ArtifactVersion

// SweepExactPrefixCap is the largest prefix length the exact dynamic
// programs accept; exact and window-distribution computations clamp m to
// it everywhere (sweep cells, the serve API, and WindowDistribution).
const SweepExactPrefixCap = sweep.ExactPrefixCap

// SweepCellResult is one completed sweep grid cell.
type SweepCellResult = sweep.CellResult

// SweepOptions tunes a sweep run (timing, progress sink) without
// affecting its results.
type SweepOptions = sweep.Options

// LitmusTest is a named litmus test with per-model expectations.
type LitmusTest = litmus.Test

// LitmusResult is a litmus conformance result.
type LitmusResult = litmus.Result

// MachineProgram is an operational multiprocessor program.
type MachineProgram = machine.Program

// SC returns Sequential Consistency.
func SC() Model { return memmodel.SC() }

// TSO returns Total Store Order.
func TSO() Model { return memmodel.TSO() }

// PSO returns Partial Store Order.
func PSO() Model { return memmodel.PSO() }

// WO returns Weak Ordering.
func WO() Model { return memmodel.WO() }

// AllModels returns the four canonical models, strongest first.
func AllModels() []Model { return memmodel.All() }

// ModelByName resolves "SC", "TSO", "PSO", or "WO" (case-insensitive).
func ModelByName(name string) (Model, error) { return memmodel.ByName(name) }

// WindowDistribution returns the exact distribution of the critical-window
// growth Pr[B_γ], γ ∈ [0, maxGamma], for a random program of the given
// prefix length settled under the model with the paper's normal-form
// parameters p = s = 1/2 (Theorem 4.1's quantity, at finite m).
//
// Prefix lengths above SweepExactPrefixCap are clamped to it, exactly as
// the sweep engine clamps its windowdist cells: the exact DP's state
// space is 2^m, so larger prefixes are intractable, and the finite-m
// truncation error already decays geometrically well below the cap.
func WindowDistribution(model Model, prefixLen, maxGamma int) ([]float64, error) {
	if prefixLen > sweep.ExactPrefixCap {
		prefixLen = sweep.ExactPrefixCap
	}
	pmf, err := settle.ExactWindowDist(model, prefixLen, 0.5, 0.5, maxGamma)
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxGamma+1)
	for gamma := range out {
		out[gamma] = pmf.At(gamma)
	}
	return out, nil
}

// TwoThreadNoBugProbability returns rigorous bounds on Pr[A] for two
// threads under the model (Theorem 6.2's quantity), computed exactly from
// the settling dynamic program.
func TwoThreadNoBugProbability(model Model) (Interval, error) {
	cfg := Config{Model: model, Threads: 2, PrefixLen: 16, StoreProb: 0.5, SwapProb: 0.5}
	return core.ExactTwoThreadPrA(cfg)
}

// NoBugProbability estimates Pr[A] for the given model and thread count by
// full Monte Carlo over the joined process, returning the point estimate
// with a 99% Wilson interval.
func NoBugProbability(ctx context.Context, model Model, threads, trials int, seed uint64) (estimate, lo, hi float64, err error) {
	cfg := core.DefaultConfig(model, threads)
	res, err := core.EstimateNoBugProb(ctx, cfg, mc.Config{Trials: trials, Seed: seed})
	if err != nil {
		return 0, 0, 0, err
	}
	lo, hi, err = res.WilsonCI(0.99)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Estimate(), lo, hi, nil
}

// HybridNoBugProbability estimates Pr[A] via Theorem 6.1 (analytic shift
// combinatorics, Monte Carlo window expectation); unlike NoBugProbability
// it stays accurate when Pr[A] is astronomically small.
func HybridNoBugProbability(ctx context.Context, model Model, threads, trials int, seed uint64) (*HybridResult, error) {
	cfg := core.DefaultConfig(model, threads)
	return core.HybridPrA(ctx, cfg, mc.Config{Trials: trials, Seed: seed})
}

// ThreadScaling sweeps thread counts for the given models and reports the
// Theorem 6.3 normalized decay rates −ln Pr[A]/n² and their ratio to SC.
// The sweep runs through the orchestration engine: one hybrid cell per
// model × n, sharded across a worker pool, deterministic in the seed.
func ThreadScaling(ctx context.Context, models []Model, ns []int, trials int, seed uint64) ([]ScalingRow, error) {
	return sweep.ThreadScaling(ctx, models, ns, 64, mc.Config{Trials: trials, Seed: seed})
}

// DefaultSweepSpec returns a spec pre-filled with the paper's normal-form
// scalar parameters (p = s = 1/2, max gamma 8); fill in the grid fields
// before running it.
func DefaultSweepSpec() SweepSpec { return sweep.DefaultSpec() }

// RunSweep expands the spec's grid, runs every cell, and returns the
// collected artifact. Artifacts are reproducible: identical (spec, seed)
// produce byte-identical JSON regardless of the spec's worker budget.
// Start from DefaultSweepSpec unless you mean to set every scalar field
// yourself — zero probabilities are honored as genuine zeros.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepArtifact, error) {
	return sweep.Run(ctx, spec, opts)
}

// DecodeSweepArtifact reads a JSON sweep artifact — a `memsweep -o` file
// or a `/v1/sweeps/{id}/artifact` response body — rejecting artifacts
// whose schema version is not SweepArtifactVersion, per the artifact
// contract.
func DecodeSweepArtifact(r io.Reader) (*SweepArtifact, error) {
	return sweep.DecodeArtifact(r)
}

// LitmusTests returns the built-in litmus registry (SB, MP, LB, 2+2W,
// CoRR, IRIW, INC).
func LitmusTests() []LitmusTest { return litmus.Registry() }

// LitmusCheckAll exhaustively checks every registered litmus test under
// every canonical model against its expected allowed/forbidden status.
func LitmusCheckAll() ([]LitmusResult, error) { return litmus.CheckAll() }

// Server is the HTTP estimation service: a JSON API over the estimators
// and the sweep engine with an LRU result cache, singleflight
// deduplication, and async sweep jobs on a bounded worker pool. It
// implements http.Handler; cmd/memserved is the ready-made daemon.
type Server = serve.Server

// ServeConfig configures a Server; its zero value gets sensible
// defaults.
type ServeConfig = serve.Config

// EstimateRequest is the POST /v1/estimate request body.
type EstimateRequest = serve.EstimateRequest

// EstimateResponse is the POST /v1/estimate response body.
type EstimateResponse = serve.EstimateResponse

// NewServer returns a started estimation service. Responses for
// identical (request, seed) are byte-identical — the service inherits
// the sweep engine's reproducibility guarantee. Call Close to release
// its workers.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }
