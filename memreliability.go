// Package memreliability reproduces "The Impact of Memory Models on
// Software Reliability in Multiprocessors" (Jaffe, Effinger-Dean, Ceze,
// Moscibroda, Strauss; PODC 2011): a probabilistic model of how memory
// consistency models affect the likelihood that a canonical concurrency
// bug manifests.
//
// The package is a facade over the implementation packages:
//
//   - memory models as reordering matrices (Table 1) with fence support;
//   - the settling process (§3.1.2) sampling instruction reorderings, plus
//     an exact finite-program dynamic program validating Theorem 4.1;
//   - the shift process (§5) with the exact Theorem 5.1 evaluation;
//   - the joined model (§6) estimating Pr[A], the probability the §2.2
//     atomicity violation does not manifest, by exact computation (n=2),
//     full simulation, and the Theorem 6.1 hybrid that reaches the
//     e^{-Θ(n²)} regime of Theorem 6.3;
//   - an operational multiprocessor simulator (reorder windows and store
//     buffers) with a litmus-test harness and a vector-clock race
//     detector, grounding the abstract model in executable semantics.
//
// Estimation runs through one canonical surface: a Query (the full
// model/threads/prefix/p/s/trials/seed/confidence/kind tuple) dispatched
// via Estimate or EstimateBatch through the internal estimator registry.
// The sweep engine, the HTTP service, the cmd/ tools, and this package's
// legacy helpers (now documented shims) all adapt onto it, so
// validation, clamping, and defaults are defined exactly once.
//
// The Monte Carlo harness underneath is bit-parallel: batched trials
// emit 64 outcomes per uint64 word (BatchTrialBits) and successes are
// counted by popcount, with the []bool and per-trial interfaces kept as
// adapters that produce bit-identical estimates. Custom experiments
// reach the same engine through EstimateProbabilityBits.
//
// Types are re-exported as aliases so downstream code needs only this
// package for the common workflows; the cmd/ tools and examples/ show
// complete usage.
package memreliability

import (
	"context"
	"io"

	"memreliability/internal/analytic"
	"memreliability/internal/core"
	"memreliability/internal/estimator"
	"memreliability/internal/litmus"
	"memreliability/internal/machine"
	"memreliability/internal/mc"
	"memreliability/internal/memmodel"
	"memreliability/internal/obs"
	"memreliability/internal/serve"
	"memreliability/internal/sweep"
)

// Model is a memory consistency model (a Table 1 reordering matrix).
type Model = memmodel.Model

// Interval is a two-sided probability bound.
type Interval = analytic.Interval

// Config configures a joined-model experiment.
type Config = core.Config

// BatchTrialBits is the Monte Carlo harness's canonical batched trial
// interface: one call evaluates n consecutive trials on the chunk's RNG
// substream and packs the outcomes 64 per uint64 word, LSB-first —
// trial i lands in bit i%64 of out[i/64]. When n is not a multiple of
// 64, the unused high bits of the final word must be written as zero
// (the harness popcounts whole words). Config.NoBugBits builds one for
// the joined process; custom experiments implement it directly for the
// bit-parallel hot path (see examples/bitstrial) and run it with
// EstimateProbabilityBits. PackBools satisfies the packing contract for
// implementations that naturally produce booleans.
type BatchTrialBits = mc.BatchTrialBits

// BatchTrial is the []bool batched trial interface — an adapter form
// over BatchTrialBits: the harness packs its output into bitsets
// (PackBools) on a per-worker buffer, so it keeps the zero
// steady-state-allocation property at a small packing cost.
// Config.NoBugBatch builds one for the joined process; it remains fully
// supported as the convenient interface when bit packing is not worth
// hand-writing.
type BatchTrial = mc.BatchTrial

// BatchMean is the batched form of a real-valued sampler, used by the
// Theorem 6.1 hybrid route's product expectation (Config.ProductBatch).
// Real-valued samples have no bitset form; this interface is not an
// adapter.
type BatchMean = mc.BatchMean

// MCWordBits is the number of trials packed into one BatchTrialBits
// word.
const MCWordBits = mc.WordBits

// MCBitWords returns the number of uint64 words a BatchTrialBits output
// buffer needs for n trials: ⌈n/64⌉.
func MCBitWords(n int) int { return mc.BitWords(n) }

// MCPackBools packs boolean trial outcomes into dst under the
// BatchTrialBits layout, zeroing the unused high bits of the final word
// per the partial-word contract. len(dst) must be at least
// MCBitWords(len(src)).
func MCPackBools(dst []uint64, src []bool) { mc.PackBools(dst, src) }

// MCConfig configures a direct Monte Carlo run (trials, workers, seed).
// Most callers should prefer a Query through Estimate; the direct
// harness entry points below exist for custom BatchTrialBits
// experiments outside the registry's kinds.
type MCConfig = mc.Config

// MCResult is a direct Monte Carlo estimate with its Wilson interval.
type MCResult = mc.Result

// EstimateProbabilityBits runs a custom bit-parallel batched trial
// through the Monte Carlo harness: deterministic chunked substreams
// (results depend only on cfg.Trials and cfg.Seed, never on
// cfg.Workers), zero steady-state allocations, cooperative
// cancellation. This is the same engine every registry kind runs on.
func EstimateProbabilityBits(ctx context.Context, cfg MCConfig, batch BatchTrialBits) (*MCResult, error) {
	return mc.EstimateProbabilityBits(ctx, cfg, batch)
}

// EstimateProbabilityBatch is the []bool adapter over
// EstimateProbabilityBits: same engine, same guarantees, identical
// estimates for implementations that consume the RNG identically.
func EstimateProbabilityBatch(ctx context.Context, cfg MCConfig, batch BatchTrial) (*MCResult, error) {
	return mc.EstimateProbabilityBatch(ctx, cfg, batch)
}

// HybridResult is a Theorem 6.1 hybrid estimate.
type HybridResult = core.HybridResult

// ScalingRow is one row of a Theorem 6.3 thread-scaling sweep.
type ScalingRow = core.ScalingRow

// Query is the canonical estimation request: the full (model, threads,
// prefix, p, s, trials, seed, confidence, max gamma, kind) tuple that
// every surface — this facade, sweeps, the HTTP service, the CLIs —
// dispatches through one registry. Start from DefaultQuery.
type Query = estimator.Query

// QueryResult is the unified estimator result: point estimate, interval,
// log-domain value, per-kind diagnostics, and cost/timing metadata.
type QueryResult = estimator.Result

// Kind names an estimation route in the estimator registry. It is the
// same type as SweepKind: a sweep cell's kind and a direct Query's kind
// interchange freely.
type Kind = estimator.Kind

// BatchOptions tunes an EstimateBatch run (worker budget, timing,
// progress callback) without affecting its results.
type BatchOptions = estimator.BatchOptions

// Precision requests adaptive-precision estimation on a Query (set
// Query.Precision): Monte Carlo runs in deterministic chunk-aligned
// rounds until the confidence interval meets the configured absolute
// half-width and/or relative-error target, capped at MaxTrials (0 =
// Query.Trials). The result's TrialsUsed, Rounds, and StopReason record
// the cost and whether the targets were met (StopConverged) or the
// budget ran out (StopBudget). Trials-consumed is itself deterministic
// in the query — worker counts never change it.
type Precision = estimator.Precision

// QueryResult.StopReason values for adaptive queries.
const (
	// StopConverged: every requested precision target was met.
	StopConverged = estimator.StopConverged
	// StopBudget: MaxTrials ran out before the targets held; the
	// estimate has NOT reached the requested precision.
	StopBudget = estimator.StopBudget
)

// DefaultConfidence is the Wilson-interval level used when a Query
// leaves Confidence at zero.
const DefaultConfidence = estimator.DefaultConfidence

// DefaultQuery returns the paper's normal form — hybrid estimation of
// Pr[A] at n = 2, m = 64, p = s = 1/2, 50000 trials, seed 1, 99%
// confidence, max gamma 8. Every surface's defaults (this facade's
// helpers included) derive from it; set Model and override fields as
// needed.
func DefaultQuery() Query { return estimator.DefaultQuery() }

// Estimate evaluates one Query through the estimator registry: canonical
// validation, exact-DP clamping, and deterministic seed derivation in
// one place. The result depends only on the Query — never on scheduling.
func Estimate(ctx context.Context, q Query) (QueryResult, error) {
	return estimator.Estimate(ctx, q)
}

// EstimateBatch evaluates the queries concurrently under a bounded
// worker pool and returns results in query order. Each result is
// identical to what a lone Estimate of that query returns, at any
// worker budget; opts.Progress observes completions.
func EstimateBatch(ctx context.Context, queries []Query, opts BatchOptions) ([]QueryResult, error) {
	return estimator.EstimateBatch(ctx, queries, opts)
}

// EstimatorKinds lists every registered estimator kind in canonical
// order (exact, mc, hybrid, windowdist, then extensions).
func EstimatorKinds() []Kind { return estimator.Kinds() }

// SweepSpec declaratively describes an experiment sweep: a grid of
// models × thread counts × prefix lengths × estimator kinds, plus trials,
// seed, and worker budget.
type SweepSpec = sweep.Spec

// SweepKind names an estimation route within a sweep.
type SweepKind = sweep.Kind

// Sweep estimator kinds.
const (
	SweepExact      = sweep.Exact
	SweepFullMC     = sweep.FullMC
	SweepHybrid     = sweep.Hybrid
	SweepWindowDist = sweep.WindowDist
	// SweepCompiledMC is full Monte Carlo on the query-compiled kernel
	// engine — bit-identical to SweepFullMC on the same query, faster
	// per trial.
	SweepCompiledMC = sweep.CompiledMC
)

// SweepArtifact is the versioned, reproducible result of a sweep run.
type SweepArtifact = sweep.Artifact

// SweepArtifactVersion is the schema version stamped on every sweep
// artifact, including those served by the /v1/sweeps API.
const SweepArtifactVersion = sweep.ArtifactVersion

// SweepExactPrefixCap is the largest prefix length the exact dynamic
// programs accept; exact and window-distribution computations clamp m to
// it everywhere (sweep cells, the serve API, and WindowDistribution).
const SweepExactPrefixCap = sweep.ExactPrefixCap

// SweepCellResult is one completed sweep grid cell.
type SweepCellResult = sweep.CellResult

// SweepOptions tunes a sweep run (timing, progress sink) without
// affecting its results.
type SweepOptions = sweep.Options

// LitmusTest is a named litmus test with per-model expectations.
type LitmusTest = litmus.Test

// LitmusResult is a litmus conformance result.
type LitmusResult = litmus.Result

// MachineProgram is an operational multiprocessor program.
type MachineProgram = machine.Program

// SC returns Sequential Consistency.
func SC() Model { return memmodel.SC() }

// TSO returns Total Store Order.
func TSO() Model { return memmodel.TSO() }

// PSO returns Partial Store Order.
func PSO() Model { return memmodel.PSO() }

// WO returns Weak Ordering.
func WO() Model { return memmodel.WO() }

// AllModels returns the four canonical models, strongest first.
func AllModels() []Model { return memmodel.All() }

// ModelByName resolves "SC", "TSO", "PSO", or "WO" (case-insensitive).
func ModelByName(name string) (Model, error) { return memmodel.ByName(name) }

// WindowDistribution returns the exact distribution of the critical-window
// growth Pr[B_γ], γ ∈ [0, maxGamma], for a random program of the given
// prefix length settled under the model with the paper's normal-form
// parameters p = s = 1/2 (Theorem 4.1's quantity, at finite m).
//
// Prefix lengths above SweepExactPrefixCap are clamped to it, exactly as
// the estimator registry clamps every windowdist query: the exact DP's
// state space is 2^m, so larger prefixes are intractable, and the
// finite-m truncation error already decays geometrically well below the
// cap.
//
// Deprecated-style shim: it is a thin adapter over Estimate with
// Kind = SweepWindowDist; new code should build a Query to control p, s,
// and the prefix directly.
func WindowDistribution(model Model, prefixLen, maxGamma int) ([]float64, error) {
	q := DefaultQuery()
	q.Kind = SweepWindowDist
	q.Model = model.Name()
	q.PrefixLen = prefixLen
	q.MaxGamma = maxGamma
	res, err := Estimate(context.Background(), q)
	if err != nil {
		return nil, err
	}
	// The registry tabulates Pr[B_γ] only up to the effective prefix
	// length; the probability of growth beyond it is exactly zero, so
	// pad to the requested support.
	out := make([]float64, maxGamma+1)
	copy(out, res.Dist)
	return out, nil
}

// TwoThreadNoBugProbability returns rigorous bounds on Pr[A] for two
// threads under the model (Theorem 6.2's quantity), computed exactly from
// the settling dynamic program. It is a shim over Estimate with
// Kind = SweepExact at m = 16.
func TwoThreadNoBugProbability(model Model) (Interval, error) {
	q := DefaultQuery()
	q.Kind = SweepExact
	q.Model = model.Name()
	q.PrefixLen = 16
	res, err := Estimate(context.Background(), q)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: res.Lo, Hi: res.Hi}, nil
}

// NoBugProbability estimates Pr[A] for the given model and thread count by
// full Monte Carlo over the joined process, returning the point estimate
// with its Wilson interval at DefaultConfidence (99%).
//
// Deprecated-style shim: it is a thin adapter over Estimate with
// Kind = SweepFullMC and the DefaultQuery normal form; build a Query to
// choose another confidence level, prefix length, or probabilities.
func NoBugProbability(ctx context.Context, model Model, threads, trials int, seed uint64) (estimate, lo, hi float64, err error) {
	q := DefaultQuery()
	q.Kind = SweepFullMC
	q.Model = model.Name()
	q.Threads = threads
	q.Trials = trials
	q.Seed = seed
	res, err := Estimate(ctx, q)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Estimate, res.Lo, res.Hi, nil
}

// HybridNoBugProbability estimates Pr[A] via Theorem 6.1 (analytic shift
// combinatorics, Monte Carlo window expectation); unlike NoBugProbability
// it stays accurate when Pr[A] is astronomically small.
//
// Deprecated-style shim over Estimate with Kind = SweepHybrid; the
// returned HybridResult is assembled from the QueryResult's estimate,
// log estimate, and hybrid diagnostics.
func HybridNoBugProbability(ctx context.Context, model Model, threads, trials int, seed uint64) (*HybridResult, error) {
	q := DefaultQuery()
	q.Kind = SweepHybrid
	q.Model = model.Name()
	q.Threads = threads
	q.Trials = trials
	q.Seed = seed
	res, err := Estimate(ctx, q)
	if err != nil {
		return nil, err
	}
	return &HybridResult{
		PrA:                res.Estimate,
		LogPrA:             res.LogEstimate,
		ProductExpectation: res.ProductExpectation,
		StdErr:             res.StdErr,
	}, nil
}

// ThreadScaling sweeps thread counts for the given models and reports the
// Theorem 6.3 normalized decay rates −ln Pr[A]/n² and their ratio to SC.
// The sweep runs through the orchestration engine: one hybrid cell per
// model × n, sharded across a worker pool, deterministic in the seed.
// Cells use DefaultQuery's normal-form prefix length (m = 64), so the
// paper's normal form is defined in exactly one place.
func ThreadScaling(ctx context.Context, models []Model, ns []int, trials int, seed uint64) ([]ScalingRow, error) {
	return sweep.ThreadScaling(ctx, models, ns, DefaultQuery().PrefixLen,
		mc.Config{Trials: trials, Seed: seed})
}

// DefaultSweepSpec returns a spec pre-filled with the paper's normal-form
// scalar parameters (p = s = 1/2, max gamma 8); fill in the grid fields
// before running it.
func DefaultSweepSpec() SweepSpec { return sweep.DefaultSpec() }

// RunSweep expands the spec's grid, runs every cell, and returns the
// collected artifact. Artifacts are reproducible: identical (spec, seed)
// produce byte-identical JSON regardless of the spec's worker budget.
// Start from DefaultSweepSpec unless you mean to set every scalar field
// yourself — zero probabilities are honored as genuine zeros.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepArtifact, error) {
	return sweep.Run(ctx, spec, opts)
}

// DecodeSweepArtifact reads a JSON sweep artifact — a `memsweep -o` file
// or a `/v1/sweeps/{id}/artifact` response body — rejecting artifacts
// whose schema version is not SweepArtifactVersion, per the artifact
// contract.
func DecodeSweepArtifact(r io.Reader) (*SweepArtifact, error) {
	return sweep.DecodeArtifact(r)
}

// LitmusTests returns the built-in litmus registry (SB, MP, LB, 2+2W,
// CoRR, IRIW, INC).
func LitmusTests() []LitmusTest { return litmus.Registry() }

// LitmusCheckAll exhaustively checks every registered litmus test under
// every canonical model against its expected allowed/forbidden status.
func LitmusCheckAll() ([]LitmusResult, error) { return litmus.CheckAll() }

// Server is the HTTP estimation service: a JSON API over the estimators
// and the sweep engine with an LRU result cache, singleflight
// deduplication, and async sweep jobs on a bounded worker pool. It
// implements http.Handler; cmd/memserved is the ready-made daemon.
type Server = serve.Server

// ServeConfig configures a Server; its zero value gets sensible
// defaults.
type ServeConfig = serve.Config

// EstimateRequest is the POST /v1/estimate request body.
type EstimateRequest = serve.EstimateRequest

// EstimateResponse is the POST /v1/estimate response body.
type EstimateResponse = serve.EstimateResponse

// NewServer returns a started estimation service. Responses for
// identical (request, seed) are byte-identical — the service inherits
// the sweep engine's reproducibility guarantee. Call Close to release
// its workers.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Span is one node of a query-scoped trace: a named, timed interval
// with attributes and children. Spans observe the estimate lifecycle at
// its sequential barriers only, so the same (query, seed) yields the
// identical span structure at any worker count and estimation results
// are never perturbed. All methods are nil-safe — an untraced run pays
// only a nil check.
type Span = obs.Span

// NewTrace starts a root span. Attach it to a context with WithSpan and
// pass that context to Estimate/EstimateBatch/SweepRun; the engine adds
// children at validation, dispatch, adaptive rounds, and merge points.
// After End, Span.WriteJSON exports the tree.
func NewTrace(name string) *Span { return obs.NewTrace(name) }

// WithSpan returns a context carrying the span for the engine to attach
// children to.
func WithSpan(ctx context.Context, s *Span) context.Context { return obs.WithSpan(ctx, s) }

// MetricsRegistry is a typed metrics registry (atomic counters, gauges,
// fixed-bucket histograms) with deterministic Prometheus text
// exposition via WritePrometheus.
type MetricsRegistry = obs.Registry

// EngineMetrics returns the process-global registry the estimation
// engine instruments (estimator_*, mc_*, core_*, sweep_* families).
// Servers additionally expose it at GET /metrics/prom.
func EngineMetrics() *MetricsRegistry { return obs.Default() }
